// Bounded model checking as an incremental query stream: prove a FIFO
// controller (the shape of the SAT-2002 "fifo" instances in the paper's
// Table 10) safe up to a depth, then find the exact failure depth of a
// buggy variant — all through berkmin.BMC, the clause-group-driven
// checker.
//
// BMC keeps ONE solver alive for the whole deepening run: each new frame's
// transition logic is added permanently (learnt clauses about it carry
// from depth to depth), while each depth's "the property fails somewhere
// in frames 0..d" disjunction lives in a clause group that is released as
// the bound advances — temporary clauses evaporate instead of
// accumulating, and the solver's heuristic state follows the stream
// (IncrementalOptions' between-query decay).
package main

import (
	"fmt"

	"berkmin"
)

func main() {
	const (
		ptrBits  = 3 // 8-slot FIFO
		maxDepth = 16
	)

	// 1. The correct FIFO: occupancy can never exceed capacity.
	safe := berkmin.FIFO(ptrBits, false)
	res, err := berkmin.BMC(safe, 20, berkmin.IncrementalOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("safe fifo:  %v up to depth %d (no overflow reachable; %d queries, %d conflicts)\n",
		res.Status, res.Depth, res.Queries, res.Stats.Conflicts)

	// 2. The buggy FIFO (missing full-check): the checker stops at the
	// shallowest counterexample.
	buggy := berkmin.FIFO(ptrBits, true)
	res, err = berkmin.BMC(buggy, maxDepth, berkmin.IncrementalOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("buggy fifo: %v at depth %d (%d pushes overrun the %d-slot buffer; %d queries)\n",
		res.Status, res.Depth, res.Depth, 1<<ptrBits, res.Queries)

	// 3. The same stream by hand, with an UNSAT core per depth: each
	// depth's group is the core of its UNSAT answer until the bug bites.
	s := berkmin.NewWithOptions(berkmin.IncrementalOptions())
	f, sels, err := berkmin.UnrollIncremental(buggy, maxDepth)
	if err != nil {
		panic(err)
	}
	s.AddFormula(f)
	for k := 1; k <= maxDepth; k++ {
		g := s.NewClauseGroup()
		s.AddClauseGroup(g, sels[k]) // activate depth k's selector, temporarily
		r := s.Solve()
		if r.Status == berkmin.StatusSat {
			fmt.Printf("manual stream: depth %2d SAT — counterexample found\n", k)
			break
		}
		groups, _ := s.UnsatCore()
		fmt.Printf("manual stream: depth %2d %v (core: %d group(s))\n", k, r.Status, len(groups))
		s.ReleaseGroup(g)
	}
}
