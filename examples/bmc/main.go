// Bounded model checking: unroll a FIFO controller's transition relation
// (the shape of the SAT-2002 "fifo" instances in the paper's Table 10),
// prove the safe design correct up to a depth, and find the exact failure
// depth of a buggy design by iterative deepening.
//
// The deepening loop uses the incremental encoding plus a formula
// snapshot: the transition relation is encoded and preprocessed ONCE, each
// depth is a SolveAssuming call on a per-depth selector literal, and learnt
// clauses about the transition logic carry from depth to depth — instead of
// re-unrolling, re-feeding and re-simplifying a fresh solver per depth.
package main

import (
	"fmt"

	"berkmin"
)

func main() {
	const (
		ptrBits  = 3 // 8-slot FIFO
		maxDepth = 16
	)

	// 1. The correct FIFO: occupancy can never exceed capacity.
	safe := berkmin.FIFO(ptrBits, false)
	f, sels, err := berkmin.UnrollIncremental(safe, 20)
	if err != nil {
		panic(err)
	}
	s := berkmin.New()
	so := berkmin.DefaultSimplifyOptions()
	s.SetSimplify(&so)
	s.AddFormula(f)
	res := s.SolveAssuming(sels[20])
	fmt.Printf("safe fifo, 20 steps: %v (no overflow reachable)\n", res.Status)

	// 2. The buggy FIFO (missing full-check): find the shallowest
	// counterexample. Encode all depths once, snapshot after the one
	// preprocessing pass, and probe depth after depth on one derived
	// solver.
	buggy := berkmin.FIFO(ptrBits, true)
	f, sels, err = berkmin.UnrollIncremental(buggy, maxDepth)
	if err != nil {
		panic(err)
	}
	src := berkmin.New()
	so = berkmin.DefaultSimplifyOptions()
	src.SetSimplify(&so)
	src.AddFormula(f)
	snap := src.Snapshot() // pays encoding + preprocessing once

	w := snap.NewSolver()
	for k := 1; k <= maxDepth; k++ {
		res := w.SolveAssuming(sels[k])
		fmt.Printf("buggy fifo, depth %2d: %v\n", k, res.Status)
		if res.Status == berkmin.StatusSat {
			fmt.Printf("overflow reachable in %d steps: %d pushes overrun the %d-slot buffer\n",
				k, k, 1<<ptrBits)
			break
		}
	}
}
