package berkmin_test

import (
	"bytes"
	"testing"

	"berkmin"
)

func TestProofRoundTrip(t *testing.T) {
	inst := berkmin.Pigeonhole(5)
	var proof bytes.Buffer
	s := berkmin.New()
	s.SetProofWriter(&proof)
	s.AddFormula(inst.Formula)
	if r := s.Solve(); r.Status != berkmin.StatusUnsat {
		t.Fatalf("status = %v", r.Status)
	}
	res, err := berkmin.CheckDRUP(inst.Formula, &proof)
	if err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
	if !res.EmptyDerived {
		t.Fatal("empty clause not derived")
	}
}

func TestProofRejectsTampering(t *testing.T) {
	inst := berkmin.Pigeonhole(4)
	var proof bytes.Buffer
	s := berkmin.New()
	s.SetProofWriter(&proof)
	s.AddFormula(inst.Formula)
	s.Solve()
	// Prepend a bogus step: unit 1 is not RUP for the pigeonhole formula.
	tampered := bytes.NewBufferString("1 0\n")
	tampered.Write(proof.Bytes())
	// The tampered step may or may not break downstream RUP steps, but the
	// check must reject the bogus step itself.
	if _, err := berkmin.CheckDRUP(inst.Formula, tampered); err == nil {
		t.Fatal("tampered proof accepted")
	}
}
